package query

import (
	"strings"
	"testing"
)

// appendixBQuery is the exact query text of Appendix B (Query 1).
const appendixBQuery = `
SELECT S.id, T.id, S.local_time
FROM S, T [windowsize=3 sampleinterval=100]
WHERE S.id < 25 AND hash(S.u) % 2 = 0
AND T.id > 50 AND hash(T.u) % 2 = 0
AND S.x = T.y + 5 AND S.u = T.u`

func TestParseAppendixBQuery(t *testing.T) {
	st, err := Parse(appendixBQuery, DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 3 {
		t.Fatalf("projected %d attrs, want 3", len(st.Select))
	}
	if st.Select[0] != (AttrRef{S, "id"}) || st.Select[1] != (AttrRef{T, "id"}) {
		t.Fatalf("projection = %v", st.Select)
	}
	if st.WindowSize != 3 || st.SampleInterval != 100 {
		t.Fatalf("options = w%d si%d", st.WindowSize, st.SampleInterval)
	}
	// Semantics: a matching binding.
	b := MapBinding{
		S: {"id": 10, "x": 12, "u": 4},
		T: {"id": 60, "y": 7, "u": 4},
	}
	// hash(4)%2 must be 0 for this binding to pass; pick u accordingly.
	if HashValue(4)%2 != 0 {
		b[S]["u"], b[T]["u"] = 5, 5
		if HashValue(5)%2 != 0 {
			b[S]["u"], b[T]["u"] = 6, 6
		}
	}
	if !st.Where.Eval(b) {
		t.Fatalf("matching binding rejected by parsed predicate %s", st.Where)
	}
	b[T]["y"] = 9 // now S.x != T.y+5
	if st.Where.Eval(b) {
		t.Fatal("non-matching binding accepted")
	}
}

func TestCompileAppendixBQuery(t *testing.T) {
	c, err := Compile(appendixBQuery, DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parts.SelS) != 1 || len(c.Parts.SelT) != 1 {
		t.Fatalf("static selections %d/%d, want 1/1", len(c.Parts.SelS), len(c.Parts.SelT))
	}
	if len(c.Parts.DynSelS) != 1 || len(c.Parts.DynSelT) != 1 {
		t.Fatal("dynamic selections missing")
	}
	if len(c.Parts.JoinDynamic) != 1 {
		t.Fatal("dynamic join clause missing")
	}
	if len(c.Primary) != 1 || c.Primary[0].TargetAttr != "y" {
		t.Fatalf("primary routable = %+v", c.Primary)
	}
	if len(c.Secondary) != 0 {
		t.Fatalf("unexpected secondary clauses: %v", c.Secondary)
	}
	// The routing key for a node with x=12 is 7.
	key := c.Primary[0].SourceTerm.Eval(MapBinding{S: {"x": 12}})
	if key != 7 {
		t.Fatalf("routing key = %d, want 7", key)
	}
}

func TestParseQuery2Text(t *testing.T) {
	src := `SELECT S.id, T.id FROM S, T [windowsize=1]
		WHERE S.rid = 0 AND T.rid = 3
		AND S.cid = T.cid AND S.id % 4 = T.id % 4 AND S.u = T.u`
	c, err := Compile(src, DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if c.WindowSize != 1 {
		t.Fatal("windowsize")
	}
	if len(c.Primary) != 1 || c.Primary[0].TargetAttr != "cid" {
		t.Fatalf("primary = %+v", c.Primary)
	}
	if len(c.Secondary) != 1 {
		t.Fatalf("secondary = %v (id%%4 clause must be secondary)", c.Secondary)
	}
}

func TestParseDefaults(t *testing.T) {
	st, err := Parse("SELECT S.id FROM S, T", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if st.WindowSize != 1 || st.SampleInterval != 100 {
		t.Fatalf("defaults = %d/%d", st.WindowSize, st.SampleInterval)
	}
	if !st.Where.Eval(MapBinding{}) {
		t.Fatal("missing WHERE must be TRUE")
	}
}

func TestParseBooleanStructure(t *testing.T) {
	st, err := Parse(`SELECT S.id FROM S, T WHERE
		(S.id = 1 OR S.id = 2) AND NOT T.id = 3`, DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sid, tid int32
		want     bool
	}{
		{1, 5, true}, {2, 5, true}, {3, 5, false}, {1, 3, false},
	}
	for _, c := range cases {
		b := MapBinding{S: {"id": c.sid}, T: {"id": c.tid}}
		if got := st.Where.Eval(b); got != c.want {
			t.Errorf("S.id=%d T.id=%d: got %v", c.sid, c.tid, got)
		}
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	st, err := Parse("SELECT S.id FROM S, T WHERE S.id + 2 * 3 = 7", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Where.Eval(MapBinding{S: {"id": 1}}) {
		t.Fatal("precedence: 1 + 2*3 should equal 7")
	}
	st2, err := Parse("SELECT S.id FROM S, T WHERE (S.id + 2) * 3 = 9", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Where.Eval(MapBinding{S: {"id": 1}}) {
		t.Fatal("parenthesized arithmetic: (1+2)*3 should equal 9")
	}
}

func TestParseUnaryMinus(t *testing.T) {
	st, err := Parse("SELECT S.id FROM S, T WHERE S.id = -5", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Where.Eval(MapBinding{S: {"id": -5}}) {
		t.Fatal("unary minus")
	}
}

func TestParseFunctions(t *testing.T) {
	st, err := Parse("SELECT S.id FROM S, T WHERE abs(S.u - T.u) > 1000", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Where.Eval(MapBinding{S: {"u": 3000}, T: {"u": 1000}}) {
		t.Fatal("abs predicate rejected |2000| > 1000")
	}
	if st.Where.Eval(MapBinding{S: {"u": 1500}, T: {"u": 1000}}) {
		t.Fatal("abs predicate accepted |500| > 1000")
	}
}

func TestParseComparisonOperators(t *testing.T) {
	for _, c := range []struct {
		op   string
		want bool // for S.id=5 vs 5
	}{{"=", true}, {"!=", false}, {"<>", false}, {"<", false}, {"<=", true}, {">", false}, {">=", true}} {
		st, err := Parse("SELECT S.id FROM S, T WHERE S.id "+c.op+" 5", DefaultSchema())
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if got := st.Where.Eval(MapBinding{S: {"id": 5}}); got != c.want {
			t.Errorf("5 %s 5 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	schema := DefaultSchema()
	cases := []struct {
		src, wantErr string
	}{
		{"", "expected SELECT"},
		{"SELECT FROM S, T", "relation (S or T)"},
		{"SELECT S.id FROM S", "','"},
		{"SELECT S.id FROM R, T", "must name the sensor relations"},
		{"SELECT S.id FROM S, T WHERE", "expected a value"},
		{"SELECT S.id FROM S, T WHERE S.id", "comparison operator"},
		{"SELECT S.id FROM S, T WHERE S.id = ", "expected a value"},
		{"SELECT S.nope FROM S, T", "unknown attribute"},
		{"SELECT Q.id FROM S, T", "unknown relation"},
		{"SELECT S.id FROM S, T WHERE frob(S.u) = 1", "unknown function"},
		{"SELECT S.id FROM S, T [windowsize=0]", "invalid option value"},
		{"SELECT S.id FROM S, T [bogus=3]", "unknown option"},
		{"SELECT S.id FROM S, T [windowsize=3", "unterminated options"},
		{"SELECT S.id FROM S, T WHERE S.id = 99999999999", "out of 32-bit range"},
		{"SELECT S.id FROM S, T WHERE S.id = 1 extra", "trailing input"},
		{"SELECT S.id FROM S, T WHERE S.id = 1 ⊕ 2", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, schema)
		if err == nil {
			t.Errorf("%q: no error, want %q", c.src, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: error %q, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestParseParenthesizedPredicateVsTerm(t *testing.T) {
	// '(' ambiguity: both forms must parse.
	a, err := Parse("SELECT S.id FROM S, T WHERE (S.id = 1 OR T.id = 2)", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Where.Eval(MapBinding{S: {"id": 1}, T: {"id": 9}}) {
		t.Fatal("paren predicate semantics")
	}
	b, err := Parse("SELECT S.id FROM S, T WHERE (S.id + 1) = 2", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Where.Eval(MapBinding{S: {"id": 1}}) {
		t.Fatal("paren term semantics")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse("select S.id from S, T where S.id = 1 and T.id = 2", DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Where.Eval(MapBinding{S: {"id": 1}, T: {"id": 2}}) {
		t.Fatal("lowercase keywords")
	}
}

func TestCompileRoundTripsThroughCNF(t *testing.T) {
	// The compiled CNF must be semantically equivalent to the parsed
	// predicate on a grid of bindings.
	src := `SELECT S.id FROM S, T WHERE
		(S.id < 25 OR NOT T.id > 50) AND S.x = T.y + 5`
	st, err := Parse(src, DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	f := ToCNF(st.Where)
	for sid := int32(20); sid <= 30; sid += 5 {
		for tid := int32(45); tid <= 55; tid += 5 {
			for x := int32(10); x <= 14; x += 2 {
				b := MapBinding{S: {"id": sid, "x": x}, T: {"id": tid, "y": x - 5}}
				if st.Where.Eval(b) != f.Eval(b) {
					t.Fatalf("CNF mismatch at sid=%d tid=%d x=%d", sid, tid, x)
				}
			}
		}
	}
}

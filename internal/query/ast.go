// Package query implements the paper's query model (section 2 and Appendix
// B): StreamSQL-style select-project-join queries over two sensor relations
// S and T, with a predicate AST, conversion to conjunctive normal form,
// classification of clauses into static/dynamic selections and joins, and
// the pattern matcher that separates primary (routable) join predicates
// from secondary ones evaluated after routing.
//
// Attribute values are 16-bit integers as in the paper ("predicates over
// 16-bit integer attributes, common for most hardware"); we compute in
// int32 to avoid overflow in arithmetic sub-expressions and truncate only
// at the sensor boundary.
package query

import "fmt"

// Rel names one of the two joined relations.
type Rel uint8

const (
	// S is the source relation.
	S Rel = iota
	// T is the target relation.
	T
)

// String returns "S" or "T".
func (r Rel) String() string {
	if r == S {
		return "S"
	}
	return "T"
}

// Binding supplies attribute values during evaluation: the static
// attributes of the bound node(s) plus the current dynamic readings.
type Binding interface {
	// Value returns the named attribute of the given relation's bound
	// tuple. It panics on unknown attributes — queries are validated
	// against the schema before execution.
	Value(rel Rel, attr string) int32
}

// MapBinding is a simple Binding over nested maps, used by tests and the
// query pre-processor.
type MapBinding map[Rel]map[string]int32

// Value implements Binding.
func (b MapBinding) Value(rel Rel, attr string) int32 {
	v, ok := b[rel][attr]
	if !ok {
		panic(fmt.Sprintf("query: unbound attribute %v.%s", rel, attr))
	}
	return v
}

// --- Terms (integer-valued expressions) ------------------------------------

// Term is an integer-valued expression.
type Term interface {
	Eval(b Binding) int32
	// refs adds every referenced attribute to set.
	refs(set map[AttrRef]bool)
	String() string
}

// AttrRef identifies one attribute of one relation.
type AttrRef struct {
	Rel  Rel
	Attr string
}

// String returns "S.attr" / "T.attr".
func (a AttrRef) String() string { return a.Rel.String() + "." + a.Attr }

// Attr is a Term referencing an attribute.
type Attr struct {
	Rel  Rel
	Attr string
}

// Eval implements Term.
func (a Attr) Eval(b Binding) int32 { return b.Value(a.Rel, a.Attr) }

func (a Attr) refs(set map[AttrRef]bool) { set[AttrRef{a.Rel, a.Attr}] = true }

// String implements Term.
func (a Attr) String() string { return a.Rel.String() + "." + a.Attr }

// Const is a literal Term.
type Const int32

// Eval implements Term.
func (c Const) Eval(Binding) int32 { return int32(c) }

func (c Const) refs(map[AttrRef]bool) {}

// String implements Term.
func (c Const) String() string { return fmt.Sprintf("%d", int32(c)) }

// ArithOp is a binary arithmetic operator.
type ArithOp uint8

// Arithmetic operators supported in predicates (Appendix B: "the standard
// arithmetic operators").
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

var arithNames = [...]string{"+", "-", "*", "/", "%"}

// Arith applies op to two sub-terms.
type Arith struct {
	Op   ArithOp
	L, R Term
}

// Eval implements Term. Division and modulo by zero evaluate to 0 rather
// than crashing a sensor node mid-query.
func (a Arith) Eval(b Binding) int32 {
	l, r := a.L.Eval(b), a.R.Eval(b)
	switch a.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		if r == 0 {
			return 0
		}
		return l / r
	case Mod:
		if r == 0 {
			return 0
		}
		m := l % r
		if m < 0 {
			m += abs32(r) // mathematical modulus: id%4 buckets are non-negative
		}
		return m
	default:
		panic("query: unknown arithmetic op")
	}
}

func (a Arith) refs(set map[AttrRef]bool) { a.L.refs(set); a.R.refs(set) }

// String implements Term.
func (a Arith) String() string {
	return "(" + a.L.String() + arithNames[a.Op] + a.R.String() + ")"
}

// Abs is |x| (Query 3's abs(s.v - t.v)).
type Abs struct{ X Term }

// Eval implements Term.
func (a Abs) Eval(b Binding) int32 { return abs32(a.X.Eval(b)) }

func (a Abs) refs(set map[AttrRef]bool) { a.X.refs(set) }

// String implements Term.
func (a Abs) String() string { return "abs(" + a.X.String() + ")" }

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// Hash is the query-language hash function (Table 2's hP(u) filters). It
// must agree across all nodes, so it is a fixed integer mix.
type Hash struct{ X Term }

// HashValue is the node-side hash used by Hash and by the workload's
// selectivity filters.
func HashValue(v int32) int32 {
	z := uint64(uint32(v)) * 0x9E3779B97F4A7C15
	z ^= z >> 29
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 32
	return int32(uint32(z) & 0x7FFFFFFF) // non-negative
}

// Eval implements Term.
func (h Hash) Eval(b Binding) int32 { return HashValue(h.X.Eval(b)) }

func (h Hash) refs(set map[AttrRef]bool) { h.X.refs(set) }

// String implements Term.
func (h Hash) String() string { return "hash(" + h.X.String() + ")" }

// --- Predicates -------------------------------------------------------------

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// negate returns the complementary operator (for Not push-down).
func (op CmpOp) negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default:
		return LT
	}
}

// Pred is a boolean predicate expression.
type Pred interface {
	Eval(b Binding) bool
	// Refs returns all referenced attributes.
	Refs() map[AttrRef]bool
	String() string
}

// Cmp compares two terms. It is the only predicate leaf.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// Eval implements Pred.
func (c Cmp) Eval(b Binding) bool {
	l, r := c.L.Eval(b), c.R.Eval(b)
	switch c.Op {
	case EQ:
		return l == r
	case NE:
		return l != r
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	default:
		panic("query: unknown comparison")
	}
}

// Refs implements Pred.
func (c Cmp) Refs() map[AttrRef]bool {
	set := map[AttrRef]bool{}
	c.L.refs(set)
	c.R.refs(set)
	return set
}

// String implements Pred.
func (c Cmp) String() string { return c.L.String() + cmpNames[c.Op] + c.R.String() }

// And is conjunction.
type And struct{ L, R Pred }

// Eval implements Pred.
func (a And) Eval(b Binding) bool { return a.L.Eval(b) && a.R.Eval(b) }

// Refs implements Pred.
func (a And) Refs() map[AttrRef]bool { return unionRefs(a.L, a.R) }

// String implements Pred.
func (a And) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Pred }

// Eval implements Pred.
func (o Or) Eval(b Binding) bool { return o.L.Eval(b) || o.R.Eval(b) }

// Refs implements Pred.
func (o Or) Refs() map[AttrRef]bool { return unionRefs(o.L, o.R) }

// String implements Pred.
func (o Or) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }

// Not is negation.
type Not struct{ X Pred }

// Eval implements Pred.
func (n Not) Eval(b Binding) bool { return !n.X.Eval(b) }

// Refs implements Pred.
func (n Not) Refs() map[AttrRef]bool { return n.X.Refs() }

// String implements Pred.
func (n Not) String() string { return "NOT " + n.X.String() }

// True is the vacuous predicate (an empty WHERE clause).
type True struct{}

// Eval implements Pred.
func (True) Eval(Binding) bool { return true }

// Refs implements Pred.
func (True) Refs() map[AttrRef]bool { return map[AttrRef]bool{} }

// String implements Pred.
func (True) String() string { return "TRUE" }

func unionRefs(ps ...Pred) map[AttrRef]bool {
	set := map[AttrRef]bool{}
	for _, p := range ps {
		for r := range p.Refs() {
			set[r] = true
		}
	}
	return set
}

// AndAll folds a slice of predicates into a conjunction (True when empty).
func AndAll(ps ...Pred) Pred {
	var out Pred = True{}
	for i, p := range ps {
		if i == 0 {
			out = p
		} else {
			out = And{out, p}
		}
	}
	return out
}

package query

import (
	"testing"
	"testing/quick"
)

func bind(s, t map[string]int32) MapBinding {
	return MapBinding{S: s, T: t}
}

func TestTermEval(t *testing.T) {
	b := bind(map[string]int32{"x": 10, "u": 3}, map[string]int32{"y": 5})
	cases := []struct {
		term Term
		want int32
	}{
		{Const(7), 7},
		{Attr{S, "x"}, 10},
		{Attr{T, "y"}, 5},
		{Arith{Add, Attr{T, "y"}, Const(5)}, 10},
		{Arith{Sub, Attr{S, "x"}, Const(3)}, 7},
		{Arith{Mul, Const(4), Attr{S, "u"}}, 12},
		{Arith{Div, Attr{S, "x"}, Const(3)}, 3},
		{Arith{Div, Attr{S, "x"}, Const(0)}, 0},
		{Arith{Mod, Attr{S, "x"}, Const(4)}, 2},
		{Arith{Mod, Attr{S, "x"}, Const(0)}, 0},
		{Abs{Arith{Sub, Attr{T, "y"}, Attr{S, "x"}}}, 5},
	}
	for _, c := range cases {
		if got := c.term.Eval(b); got != c.want {
			t.Errorf("%s = %d, want %d", c.term, got, c.want)
		}
	}
}

func TestModIsNonNegative(t *testing.T) {
	f := func(v int32, m uint8) bool {
		mod := int32(m%7) + 1
		b := bind(map[string]int32{"x": v}, nil)
		got := Arith{Mod, Attr{S, "x"}, Const(mod)}.Eval(b)
		return got >= 0 && got < mod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if HashValue(42) != HashValue(42) {
		t.Fatal("hash not deterministic")
	}
	buckets := map[int32]int{}
	for v := int32(0); v < 1000; v++ {
		buckets[HashValue(v)%10]++
	}
	for b, n := range buckets {
		if n < 50 || n > 200 {
			t.Fatalf("hash bucket %d has %d/1000 values — badly skewed", b, n)
		}
	}
	for v := int32(-100); v < 100; v++ {
		if HashValue(v) < 0 {
			t.Fatalf("HashValue(%d) negative", v)
		}
	}
}

func TestCmpOperators(t *testing.T) {
	b := bind(map[string]int32{"x": 5}, map[string]int32{"y": 5})
	cases := []struct {
		op   CmpOp
		l, r int32
		want bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, 4, 5, true}, {LT, 5, 5, false},
		{LE, 5, 5, true}, {LE, 6, 5, false},
		{GT, 6, 5, true}, {GT, 5, 5, false},
		{GE, 5, 5, true}, {GE, 4, 5, false},
	}
	for _, c := range cases {
		got := Cmp{c.op, Const(c.l), Const(c.r)}.Eval(b)
		if got != c.want {
			t.Errorf("%d %s %d = %v", c.l, cmpNames[c.op], c.r, got)
		}
	}
}

func TestBooleanCombinators(t *testing.T) {
	b := bind(nil, nil)
	tr := Cmp{EQ, Const(1), Const(1)}
	fa := Cmp{EQ, Const(1), Const(2)}
	if !(And{tr, tr}).Eval(b) || (And{tr, fa}).Eval(b) {
		t.Fatal("And")
	}
	if !(Or{fa, tr}).Eval(b) || (Or{fa, fa}).Eval(b) {
		t.Fatal("Or")
	}
	if (Not{tr}).Eval(b) || !(Not{fa}).Eval(b) {
		t.Fatal("Not")
	}
	if !(True{}).Eval(b) {
		t.Fatal("True")
	}
}

func TestUnboundAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound attribute did not panic")
		}
	}()
	Attr{S, "nope"}.Eval(bind(map[string]int32{}, nil))
}

// cnfEquivalent checks p and ToCNF(p) agree on a set of random bindings.
func cnfEquivalent(t *testing.T, p Pred) {
	t.Helper()
	f := ToCNF(p)
	vals := []int32{-7, -1, 0, 1, 2, 3, 5, 25, 50, 51}
	for _, x := range vals {
		for _, y := range vals {
			b := bind(map[string]int32{"x": x, "id": x, "u": y}, map[string]int32{"y": y, "id": y, "u": x})
			if p.Eval(b) != f.Eval(b) {
				t.Fatalf("CNF not equivalent at x=%d y=%d: %s vs CNF %v", x, y, p, f)
			}
		}
	}
}

func TestToCNFEquivalence(t *testing.T) {
	sx := Attr{S, "x"}
	ty := Attr{T, "y"}
	preds := []Pred{
		Cmp{EQ, sx, ty},
		And{Cmp{LT, Attr{S, "id"}, Const(25)}, Cmp{GT, Attr{T, "id"}, Const(50)}},
		Or{Cmp{EQ, sx, ty}, Cmp{EQ, sx, Const(0)}},
		Not{Or{Cmp{EQ, sx, ty}, Cmp{LT, sx, Const(0)}}},
		Not{And{Cmp{EQ, sx, ty}, Cmp{LT, sx, Const(0)}}},
		Or{And{Cmp{EQ, sx, Const(1)}, Cmp{EQ, ty, Const(2)}}, And{Cmp{EQ, sx, Const(3)}, Cmp{EQ, ty, Const(4)}}},
		Not{Not{Cmp{EQ, sx, ty}}},
		True{},
		Not{True{}},
		AndAll(Cmp{LT, sx, Const(10)}, Cmp{GT, ty, Const(0)}, Or{Cmp{EQ, sx, ty}, Not{Cmp{LE, sx, Const(5)}}}),
	}
	for _, p := range preds {
		cnfEquivalent(t, p)
	}
}

func TestToCNFShape(t *testing.T) {
	// (a=1 AND b=2) OR (c=3) must distribute into 2 clauses.
	p := Or{
		And{Cmp{EQ, Attr{S, "x"}, Const(1)}, Cmp{EQ, Attr{S, "y"}, Const(2)}},
		Cmp{EQ, Attr{T, "y"}, Const(3)},
	}
	f := ToCNF(p)
	if len(f) != 2 {
		t.Fatalf("CNF has %d clauses, want 2: %v", len(f), f)
	}
	for _, c := range f {
		if len(c) != 2 {
			t.Fatalf("clause has %d literals, want 2: %v", len(c), c)
		}
	}
}

func TestToCNFTrueFalse(t *testing.T) {
	if f := ToCNF(True{}); len(f) != 0 {
		t.Fatalf("CNF(TRUE) = %v, want empty conjunction", f)
	}
	f := ToCNF(Not{True{}})
	if len(f) != 1 || len(f[0]) != 0 {
		t.Fatalf("CNF(FALSE) = %v, want one empty clause", f)
	}
	if f.Eval(bind(nil, nil)) {
		t.Fatal("FALSE CNF evaluated true")
	}
}

func TestClassify(t *testing.T) {
	schema := DefaultSchema()
	// Query 1's predicate structure (Table 2).
	p := AndAll(
		Cmp{LT, Attr{S, "id"}, Const(25)},                           // static sel S
		Cmp{EQ, Arith{Mod, Hash{Attr{S, "u"}}, Const(2)}, Const(0)}, // dynamic sel S
		Cmp{GT, Attr{T, "id"}, Const(50)},                           // static sel T
		Cmp{EQ, Arith{Mod, Hash{Attr{T, "u"}}, Const(2)}, Const(0)}, // dynamic sel T
		Cmp{EQ, Attr{S, "x"}, Arith{Add, Attr{T, "y"}, Const(5)}},   // static join
		Cmp{EQ, Attr{S, "u"}, Attr{T, "u"}},                         // dynamic join
	)
	parts := Classify(ToCNF(p), schema)
	if len(parts.SelS) != 1 || len(parts.SelT) != 1 {
		t.Fatalf("static selections: %d S, %d T", len(parts.SelS), len(parts.SelT))
	}
	if len(parts.DynSelS) != 1 || len(parts.DynSelT) != 1 {
		t.Fatalf("dynamic selections: %d S, %d T", len(parts.DynSelS), len(parts.DynSelT))
	}
	if len(parts.JoinStatic) != 1 {
		t.Fatalf("static joins: %d", len(parts.JoinStatic))
	}
	if len(parts.JoinDynamic) != 1 {
		t.Fatalf("dynamic joins: %d", len(parts.JoinDynamic))
	}
}

func TestMatchRoutableDirect(t *testing.T) {
	schema := DefaultSchema()
	f := ToCNF(Cmp{EQ, Attr{S, "cid"}, Attr{T, "cid"}})
	parts := Classify(f, schema)
	primary, secondary := MatchRoutable(parts.JoinStatic, schema)
	if len(primary) != 1 || len(secondary) != 0 {
		t.Fatalf("primary=%d secondary=%d", len(primary), len(secondary))
	}
	r := primary[0]
	if r.TargetAttr != "cid" {
		t.Fatalf("TargetAttr = %s", r.TargetAttr)
	}
	b := bind(map[string]int32{"cid": 3}, nil)
	if r.SourceTerm.Eval(b) != 3 {
		t.Fatal("SourceTerm should be S.cid")
	}
}

func TestMatchRoutableInvertsArithmetic(t *testing.T) {
	schema := DefaultSchema()
	// Query 1: S.x = T.y + 5  =>  route on T.y with key S.x - 5.
	f := ToCNF(Cmp{EQ, Attr{S, "x"}, Arith{Add, Attr{T, "y"}, Const(5)}})
	primary, secondary := MatchRoutable(Classify(f, schema).JoinStatic, schema)
	if len(primary) != 1 || len(secondary) != 0 {
		t.Fatalf("primary=%d secondary=%d", len(primary), len(secondary))
	}
	r := primary[0]
	if r.TargetAttr != "y" {
		t.Fatalf("TargetAttr = %s, want y", r.TargetAttr)
	}
	key := r.SourceTerm.Eval(bind(map[string]int32{"x": 12}, nil))
	if key != 7 {
		t.Fatalf("key = %d, want 7 (12-5)", key)
	}
}

func TestMatchRoutableInversionVariants(t *testing.T) {
	schema := DefaultSchema()
	cases := []struct {
		pred    Pred
		sAttrs  map[string]int32
		wantKey int32
	}{
		// T.y - 3 = S.x with S.x=4  =>  T.y = 7
		{Cmp{EQ, Arith{Sub, Attr{T, "y"}, Const(3)}, Attr{S, "x"}}, map[string]int32{"x": 4}, 7},
		// 10 - T.y = S.x with S.x=4  =>  T.y = 6
		{Cmp{EQ, Arith{Sub, Const(10), Attr{T, "y"}}, Attr{S, "x"}}, map[string]int32{"x": 4}, 6},
		// 5 + T.y = S.x with S.x=9  =>  T.y = 4
		{Cmp{EQ, Arith{Add, Const(5), Attr{T, "y"}}, Attr{S, "x"}}, map[string]int32{"x": 9}, 4},
	}
	for i, c := range cases {
		primary, _ := MatchRoutable(Classify(ToCNF(c.pred), schema).JoinStatic, schema)
		if len(primary) != 1 {
			t.Fatalf("case %d: not routable: %s", i, c.pred)
		}
		got := primary[0].SourceTerm.Eval(bind(c.sAttrs, nil))
		if got != c.wantKey {
			t.Fatalf("case %d: key = %d, want %d", i, got, c.wantKey)
		}
	}
}

func TestMatchRoutableRejectsSecondary(t *testing.T) {
	schema := DefaultSchema()
	// S.id % 4 = T.id % 4 (Query 2) is static but not invertible to a
	// unique target value — must stay secondary.
	f := ToCNF(Cmp{EQ,
		Arith{Mod, Attr{S, "id"}, Const(4)},
		Arith{Mod, Attr{T, "id"}, Const(4)}})
	primary, secondary := MatchRoutable(Classify(f, schema).JoinStatic, schema)
	if len(primary) != 0 || len(secondary) != 1 {
		t.Fatalf("mod clause classified as routable")
	}
	// Inequality joins are not routable.
	f2 := ToCNF(Cmp{LT, Attr{S, "id"}, Attr{T, "id"}})
	primary2, _ := MatchRoutable(Classify(f2, schema).JoinStatic, schema)
	if len(primary2) != 0 {
		t.Fatal("inequality classified as routable")
	}
	// Dynamic-attribute equality never reaches the matcher (classified as
	// dynamic join), but if handed over it must be rejected.
	p3, _ := MatchRoutable(CNF{Clause{Cmp{EQ, Attr{S, "u"}, Attr{T, "u"}}}}, schema)
	if len(p3) != 0 {
		t.Fatal("dynamic equality classified as routable")
	}
}

func TestQuery2FullPipeline(t *testing.T) {
	schema := DefaultSchema()
	// Query 2 (Table 2): perimeter join.
	p := AndAll(
		Cmp{EQ, Attr{S, "rid"}, Const(0)},
		Cmp{EQ, Attr{T, "rid"}, Const(3)},
		Cmp{EQ, Attr{S, "cid"}, Attr{T, "cid"}},
		Cmp{EQ, Arith{Mod, Attr{S, "id"}, Const(4)}, Arith{Mod, Attr{T, "id"}, Const(4)}},
		Cmp{EQ, Attr{S, "u"}, Attr{T, "u"}},
	)
	parts := Classify(ToCNF(p), schema)
	primary, secondary := MatchRoutable(parts.JoinStatic, schema)
	if len(primary) != 1 || primary[0].TargetAttr != "cid" {
		t.Fatalf("Query 2 primary = %+v", primary)
	}
	if len(secondary) != 1 {
		t.Fatalf("Query 2 secondary = %v", secondary)
	}
	if len(parts.JoinDynamic) != 1 {
		t.Fatalf("Query 2 dynamic join = %v", parts.JoinDynamic)
	}
	// End-to-end semantics: matching pair.
	b := bind(
		map[string]int32{"rid": 0, "cid": 2, "id": 5, "u": 9},
		map[string]int32{"rid": 3, "cid": 2, "id": 9, "u": 9},
	)
	if !p.Eval(b) {
		t.Fatal("matching pair rejected")
	}
	// cid mismatch.
	b2 := bind(
		map[string]int32{"rid": 0, "cid": 2, "id": 5, "u": 9},
		map[string]int32{"rid": 3, "cid": 1, "id": 9, "u": 9},
	)
	if p.Eval(b2) {
		t.Fatal("cid mismatch accepted")
	}
}

func TestSchema(t *testing.T) {
	s := DefaultSchema()
	if s.NumAttrs() != 28 {
		t.Fatalf("schema has %d attributes, want 28", s.NumAttrs())
	}
	if !s.IsStatic("id") || !s.IsStatic("cid") || !s.IsStatic("posx") {
		t.Fatal("identifier attributes must be static")
	}
	if s.IsStatic("u") || s.IsStatic("v") || s.IsStatic("humidity") {
		t.Fatal("readings must be dynamic")
	}
	if !s.Has("temperature") || s.Has("nonexistent") {
		t.Fatal("Has misbehaves")
	}
	if len(s.Attrs()) != 28 {
		t.Fatal("Attrs() incomplete")
	}
}

func TestPredStrings(t *testing.T) {
	p := And{
		Or{Cmp{EQ, Attr{S, "x"}, Const(1)}, Not{Cmp{LT, Attr{T, "y"}, Const(2)}}},
		Cmp{NE, Hash{Attr{S, "u"}}, Abs{Attr{T, "u"}}},
	}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"S.x", "T.y", "hash(", "abs(", "AND", "OR", "NOT"} {
		if !contains(s, want) {
			t.Fatalf("String() %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

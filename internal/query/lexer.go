package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens for the StreamSQL-style query language
// of Appendix B.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokOp  // arithmetic: + - * / %
	tokCmp // comparison: = != <> < <= > >=
	tokKeyword
)

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"WINDOWSIZE": true, "SAMPLEINTERVAL": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a query string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning an error with position info on unexpected
// characters.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos - len(text)})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentStart(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos]))) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.emit(tokKeyword, strings.ToUpper(text))
		return
	}
	l.emit(tokIdent, text)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
}

func (l *lexer) lexSymbol() error {
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "!=" || two == "<>" || two == "<=" || two == ">=":
		l.pos += 2
		l.emit(tokCmp, two)
	case c == '=' || c == '<' || c == '>':
		l.pos++
		l.emit(tokCmp, string(c))
	case c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
		l.pos++
		l.emit(tokOp, string(c))
	case c == ',':
		l.pos++
		l.emit(tokComma, ",")
	case c == '.':
		l.pos++
		l.emit(tokDot, ".")
	case c == '(':
		l.pos++
		l.emit(tokLParen, "(")
	case c == ')':
		l.pos++
		l.emit(tokRParen, ")")
	case c == '[':
		l.pos++
		l.emit(tokLBracket, "[")
	case c == ']':
		l.pos++
		l.emit(tokRBracket, "]")
	default:
		return fmt.Errorf("query: unexpected character %q at offset %d", c, l.pos)
	}
	return nil
}

package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed StreamSQL-style query (Appendix B):
//
//	SELECT S.id, T.id
//	FROM S, T [windowsize=3 sampleinterval=100]
//	WHERE S.id < 25 AND hash(S.u) % 2 = 0
//	  AND T.id > 50 AND hash(T.u) % 2 = 0
//	  AND S.x = T.y + 5 AND S.u = T.u
type Statement struct {
	// Select lists the projected attributes.
	Select []AttrRef
	// WindowSize is the join window w (default 1).
	WindowSize int
	// SampleInterval is the transmission cycles per sampling cycle
	// (default 100).
	SampleInterval int
	// Where is the predicate (True for a missing WHERE clause).
	Where Pred
}

// Compiled is a Statement pushed through the section 2 pre-processing
// pipeline: CNF conversion, clause classification, and the pattern
// matcher's primary/secondary split.
type Compiled struct {
	Statement
	Parts     Parts
	Primary   []Routable
	Secondary CNF
}

// Parse parses a query string against the schema.
func Parse(src string, schema *Schema) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, schema: schema}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input starting at %s", p.peek())
	}
	return st, nil
}

// Compile parses and pre-processes a query: the result carries the
// classified CNF clauses and routable primary join predicates, ready for
// the join engines.
func Compile(src string, schema *Schema) (*Compiled, error) {
	st, err := Parse(src, schema)
	if err != nil {
		return nil, err
	}
	parts := Classify(ToCNF(st.Where), schema)
	primary, secondary := MatchRoutable(parts.JoinStatic, schema)
	return &Compiled{Statement: *st, Parts: parts, Primary: primary, Secondary: secondary}, nil
}

type parser struct {
	toks   []token
	pos    int
	schema *Schema
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool {
	return p.peek().kind == k
}
func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}
func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: "+format, args...)
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

// statement := SELECT projlist FROM S, T [opts] [WHERE pred]
func (p *parser) statement() (*Statement, error) {
	st := &Statement{WindowSize: 1, SampleInterval: 100, Where: True{}}
	if !p.eatKeyword("SELECT") {
		return nil, p.errf("expected SELECT, found %s", p.peek())
	}
	for {
		ref, err := p.attrRef()
		if err != nil {
			return nil, err
		}
		st.Select = append(st.Select, ref)
		if !p.at(tokComma) {
			break
		}
		p.next()
	}
	if !p.eatKeyword("FROM") {
		return nil, p.errf("expected FROM, found %s", p.peek())
	}
	if err := p.fromClause(); err != nil {
		return nil, err
	}
	if p.at(tokLBracket) {
		if err := p.options(st); err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = pred
	}
	return st, nil
}

// fromClause := S , T   (exactly the two sensor relations; Appendix B
// supports select-project-single-join queries over S and T).
func (p *parser) fromClause() error {
	first, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma, "','"); err != nil {
		return err
	}
	second, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return err
	}
	if !strings.EqualFold(first.text, "S") || !strings.EqualFold(second.text, "T") {
		return p.errf("FROM must name the sensor relations S, T (got %s, %s)", first.text, second.text)
	}
	return nil
}

// options := '[' (windowsize=N | sampleinterval=N)* ']'
func (p *parser) options(st *Statement) error {
	p.next() // '['
	for !p.at(tokRBracket) {
		if p.at(tokEOF) {
			return p.errf("unterminated options block")
		}
		key := p.next()
		if key.kind != tokKeyword && key.kind != tokIdent {
			return p.errf("expected option name, found %s", key)
		}
		if cmp, err := p.expect(tokCmp, "'='"); err != nil || cmp.text != "=" {
			if err != nil {
				return err
			}
			return p.errf("expected '=' after %s", key.text)
		}
		num, err := p.expect(tokNumber, "number")
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(num.text)
		if err != nil || v <= 0 {
			return p.errf("invalid option value %q", num.text)
		}
		switch strings.ToUpper(key.text) {
		case "WINDOWSIZE":
			st.WindowSize = v
		case "SAMPLEINTERVAL":
			st.SampleInterval = v
		default:
			return p.errf("unknown option %q", key.text)
		}
	}
	p.next() // ']'
	return nil
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (Pred, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or{left, right}
	}
	return left, nil
}

// andExpr := notExpr (AND notExpr)*
func (p *parser) andExpr() (Pred, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = And{left, right}
	}
	return left, nil
}

// notExpr := NOT notExpr | comparison
func (p *parser) notExpr() (Pred, error) {
	if p.eatKeyword("NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{inner}, nil
	}
	return p.comparison()
}

// comparison := term cmpOp term | '(' orExpr ')'
//
// A leading '(' is ambiguous between a parenthesized predicate and a
// parenthesized arithmetic term; we resolve by look-ahead: parse as a
// predicate if the parenthesized expression is followed by a boolean
// combinator or clause end, otherwise backtrack to term parsing.
func (p *parser) comparison() (Pred, error) {
	if p.at(tokLParen) {
		save := p.pos
		p.next()
		inner, err := p.orExpr()
		if err == nil && p.at(tokRParen) {
			p.next()
			// Confirm this parse is a predicate context: next token must
			// not continue an arithmetic or comparison expression.
			if !p.at(tokOp) && !p.at(tokCmp) {
				return inner, nil
			}
		}
		p.pos = save
	}
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokCmp, "comparison operator")
	if err != nil {
		return nil, err
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	cmp, ok := map[string]CmpOp{
		"=": EQ, "!=": NE, "<>": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
	}[op.text]
	if !ok {
		return nil, p.errf("unknown comparison %q", op.text)
	}
	return Cmp{Op: cmp, L: left, R: right}, nil
}

// term := factor (('+'|'-') factor)*
func (p *parser) term() (Term, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp) && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		kind := Add
		if op == "-" {
			kind = Sub
		}
		left = Arith{Op: kind, L: left, R: right}
	}
	return left, nil
}

// factor := unary (('*'|'/'|'%') unary)*
func (p *parser) factor() (Term, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp) && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.next().text
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		kind := Mul
		switch op {
		case "/":
			kind = Div
		case "%":
			kind = Mod
		}
		left = Arith{Op: kind, L: left, R: right}
	}
	return left, nil
}

// unary := '-' unary | primary
func (p *parser) unary() (Term, error) {
	if p.at(tokOp) && p.peek().text == "-" {
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Arith{Op: Sub, L: Const(0), R: inner}, nil
	}
	return p.primary()
}

// primary := number | attrRef | func '(' term ')' | '(' term ')'
func (p *parser) primary() (Term, error) {
	switch {
	case p.at(tokNumber):
		t := p.next()
		v, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, p.errf("integer %q out of 32-bit range", t.text)
		}
		return Const(int32(v)), nil
	case p.at(tokLParen):
		p.next()
		inner, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.at(tokIdent):
		name := p.next()
		if p.at(tokLParen) {
			return p.call(name.text)
		}
		// Must be a relation-qualified attribute: S.attr / T.attr.
		p.pos-- // rewind; attrRef re-reads the identifier
		ref, err := p.attrRef()
		if err != nil {
			return nil, err
		}
		return Attr{Rel: ref.Rel, Attr: ref.Attr}, nil
	default:
		return nil, p.errf("expected a value, found %s", p.peek())
	}
}

// call := ident '(' term ')' for the utility functions of Appendix B.
func (p *parser) call(name string) (Term, error) {
	p.next() // '('
	arg, err := p.term()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	switch strings.ToLower(name) {
	case "hash":
		return Hash{arg}, nil
	case "abs":
		return Abs{arg}, nil
	default:
		return nil, p.errf("unknown function %q (supported: hash, abs)", name)
	}
}

// attrRef := ('S'|'T') '.' ident, validated against the schema.
func (p *parser) attrRef() (AttrRef, error) {
	rel, err := p.expect(tokIdent, "relation (S or T)")
	if err != nil {
		return AttrRef{}, err
	}
	var r Rel
	switch strings.ToUpper(rel.text) {
	case "S":
		r = S
	case "T":
		r = T
	default:
		return AttrRef{}, p.errf("unknown relation %q (queries join S and T)", rel.text)
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return AttrRef{}, err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return AttrRef{}, err
	}
	if p.schema != nil && !p.schema.Has(attr.text) {
		return AttrRef{}, p.errf("unknown attribute %q (schema has %d attributes)", attr.text, p.schema.NumAttrs())
	}
	return AttrRef{Rel: r, Attr: attr.text}, nil
}

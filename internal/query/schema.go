package query

import "sort"

// Schema declares the sensor relation's attributes and whether each is
// static (fixed at deployment or updated rarely by base-station flooding)
// or dynamic (a fresh reading every sampling cycle). Appendix B: the
// pre-defined sensor schema has 28 attributes, 18 populated with physical
// or soft readings and the rest assignable from the base station.
type Schema struct {
	static map[string]bool // attr -> is static; presence means the attr exists
}

// NewSchema builds a schema from explicit attribute lists.
func NewSchema(staticAttrs, dynamicAttrs []string) *Schema {
	s := &Schema{static: make(map[string]bool, len(staticAttrs)+len(dynamicAttrs))}
	for _, a := range staticAttrs {
		s.static[a] = true
	}
	for _, a := range dynamicAttrs {
		s.static[a] = false
	}
	return s
}

// DefaultSchema returns the paper's 28-attribute sensor schema: the Table 1
// attributes plus the physical and soft readings of Appendix B.
func DefaultSchema() *Schema {
	return NewSchema(
		// Static: identifiers and base-station-assigned attributes.
		[]string{
			"id", "x", "y", "cid", "rid", "posx", "posy",
			"role", "room", "floor", "group", "caps",
		},
		// Dynamic: physical sensor measurements and soft readings.
		[]string{
			"u", "v", "temperature", "light", "humidity", "voltage",
			"battery", "rfid", "adc0", "adc1", "adc2", "accel_x",
			"accel_y", "mem_free", "local_time", "queue_len",
		},
	)
}

// Has reports whether attr exists.
func (s *Schema) Has(attr string) bool {
	_, ok := s.static[attr]
	return ok
}

// IsStatic reports whether attr is static. Unknown attributes are treated
// as dynamic, forcing the safe (unrouted) evaluation path.
func (s *Schema) IsStatic(attr string) bool { return s.static[attr] }

// Attrs returns all attribute names, sorted, for diagnostics.
func (s *Schema) Attrs() []string {
	out := make([]string, 0, len(s.static))
	for a := range s.static {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// NumAttrs returns the schema width.
func (s *Schema) NumAttrs() int { return len(s.static) }

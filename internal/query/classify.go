package query

// Parts is the result of query pre-processing (section 2, Appendix B):
// CNF clauses separated into per-relation selections and join clauses, each
// split into static (pre-evaluable during initiation) and dynamic
// (per-cycle) subgroups.
type Parts struct {
	// SelS / SelT are selection clauses referencing only static attributes
	// of one relation; pre-evaluating them decides node eligibility.
	SelS, SelT CNF
	// DynSelS / DynSelT are per-relation selection clauses over dynamic
	// attributes, evaluated at the producer each cycle (they define the
	// producer rates sigma_s, sigma_t).
	DynSelS, DynSelT CNF
	// JoinStatic are join clauses over static attributes only; the
	// pattern matcher turns a subset of them into routing predicates.
	JoinStatic CNF
	// JoinDynamic are join clauses involving dynamic attributes,
	// evaluated at the join node (they define sigma_st).
	JoinDynamic CNF
}

// Classify partitions a CNF query by the relations and attribute classes
// each clause references.
func Classify(f CNF, schema *Schema) Parts {
	var p Parts
	for _, c := range f {
		refsS, refsT, static := false, false, true
		for ref := range c.Refs() {
			if ref.Rel == S {
				refsS = true
			} else {
				refsT = true
			}
			if !schema.IsStatic(ref.Attr) {
				static = false
			}
		}
		switch {
		case refsS && refsT:
			if static {
				p.JoinStatic = append(p.JoinStatic, c)
			} else {
				p.JoinDynamic = append(p.JoinDynamic, c)
			}
		case refsS:
			if static {
				p.SelS = append(p.SelS, c)
			} else {
				p.DynSelS = append(p.DynSelS, c)
			}
		case refsT:
			if static {
				p.SelT = append(p.SelT, c)
			} else {
				p.DynSelT = append(p.DynSelT, c)
			}
		default:
			// Constant clause: keep with static joins so an unsatisfiable
			// query (empty clause) disables all pairs.
			p.JoinStatic = append(p.JoinStatic, c)
		}
	}
	return p
}

// Routable is a primary join predicate usable for content routing: for a
// given source node, the sought target nodes are exactly those whose
// indexed static attribute equals SourceTerm evaluated over the source's
// statics (e.g. S.x = T.y+5 routes on T.y with SourceTerm S.x-5).
type Routable struct {
	// TargetAttr is the T-side indexed attribute.
	TargetAttr string
	// SourceTerm references only S attributes; its value is the key to
	// search for.
	SourceTerm Term
}

// MatchRoutable is the pattern matcher of Appendix B: it scans static join
// clauses and extracts those usable for content routing (primary join
// predicates); the remainder are secondary, evaluated after the routing
// stage. Only single-literal equality clauses whose T side is an attribute
// under invertible +/- constant arithmetic qualify.
func MatchRoutable(joinStatic CNF, schema *Schema) (primary []Routable, secondary CNF) {
	for _, clause := range joinStatic {
		r, ok := routableClause(clause, schema)
		if ok {
			primary = append(primary, r)
		} else {
			secondary = append(secondary, clause)
		}
	}
	return primary, secondary
}

func routableClause(c Clause, schema *Schema) (Routable, bool) {
	if len(c) != 1 || c[0].Op != EQ {
		return Routable{}, false // disjunctions and inequalities route poorly
	}
	lit := c[0]
	// Try both orientations: T-side = f(S), or f(S) = T-side.
	if r, ok := invert(lit.L, lit.R, schema); ok {
		return r, true
	}
	if r, ok := invert(lit.R, lit.L, schema); ok {
		return r, true
	}
	return Routable{}, false
}

// invert attempts to rewrite tSide = sSide into T.attr = <term over S>.
// tSide must reference only static T attributes; sSide only static S
// attributes. Supported tSide forms: T.a, T.a + c, T.a - c, c + T.a.
func invert(tSide, sSide Term, schema *Schema) (Routable, bool) {
	if !refsOnly(sSide, S, schema) {
		return Routable{}, false
	}
	switch v := tSide.(type) {
	case Attr:
		if v.Rel == T && schema.IsStatic(v.Attr) {
			return Routable{TargetAttr: v.Attr, SourceTerm: sSide}, true
		}
	case Arith:
		c, cOnRight := constOperand(v)
		if c == nil {
			return Routable{}, false
		}
		var inner Term
		if cOnRight {
			inner = v.L
		} else {
			inner = v.R
		}
		switch v.Op {
		case Add: // T.a + c = s  =>  T.a = s - c
			return invert(inner, Arith{Op: Sub, L: sSide, R: *c}, schema)
		case Sub:
			if cOnRight { // T.a - c = s  =>  T.a = s + c
				return invert(inner, Arith{Op: Add, L: sSide, R: *c}, schema)
			}
			// c - T.a = s  =>  T.a = c - s
			return invert(inner, Arith{Op: Sub, L: *c, R: sSide}, schema)
		}
	}
	return Routable{}, false
}

// constOperand returns the constant operand of a, if it has exactly one.
func constOperand(a Arith) (*Const, bool) {
	if c, ok := a.R.(Const); ok {
		return &c, true
	}
	if c, ok := a.L.(Const); ok {
		return &c, false
	}
	return nil, false
}

// refsOnly reports whether t references only static attributes of rel.
func refsOnly(t Term, rel Rel, schema *Schema) bool {
	set := map[AttrRef]bool{}
	t.refs(set)
	if len(set) == 0 {
		return false // pure constants are not source-keyed
	}
	for ref := range set {
		if ref.Rel != rel || !schema.IsStatic(ref.Attr) {
			return false
		}
	}
	return true
}

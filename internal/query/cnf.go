package query

// Clause is a disjunction of comparison literals; a query in CNF is a
// conjunction of clauses. A literal is always a Cmp — Not is eliminated by
// operator complementation during normalization.
type Clause []Cmp

// Eval evaluates the disjunction.
func (c Clause) Eval(b Binding) bool {
	for _, lit := range c {
		if lit.Eval(b) {
			return true
		}
	}
	return false
}

// Refs returns all attributes referenced by any literal.
func (c Clause) Refs() map[AttrRef]bool {
	set := map[AttrRef]bool{}
	for _, lit := range c {
		lit.L.refs(set)
		lit.R.refs(set)
	}
	return set
}

// String renders the clause as a disjunction.
func (c Clause) String() string {
	if len(c) == 0 {
		return "FALSE"
	}
	s := c[0].String()
	for _, lit := range c[1:] {
		s += " OR " + lit.String()
	}
	return s
}

// CNF is a conjunction of clauses.
type CNF []Clause

// Eval evaluates the conjunction.
func (f CNF) Eval(b Binding) bool {
	for _, c := range f {
		if !c.Eval(b) {
			return false
		}
	}
	return true
}

// ToCNF converts p to conjunctive normal form: negations are pushed to the
// leaves (flipping comparison operators), then disjunctions are distributed
// over conjunctions. Query predicates are small (Appendix B), so the
// potential exponential blow-up is not a concern in practice; the paper
// performs the same conversion at the base station before dissemination.
func ToCNF(p Pred) CNF {
	return distribute(pushNot(p, false))
}

// nnf is the intermediate negation-normal form: And/Or over Cmp leaves.
type nnf interface{ isNNF() }

type nAnd struct{ l, r nnf }
type nOr struct{ l, r nnf }
type nLit struct{ c Cmp }
type nTrue struct{}
type nFalse struct{}

func (nAnd) isNNF()   {}
func (nOr) isNNF()    {}
func (nLit) isNNF()   {}
func (nTrue) isNNF()  {}
func (nFalse) isNNF() {}

// pushNot rewrites p into negation-normal form, negating when neg is set.
func pushNot(p Pred, neg bool) nnf {
	switch v := p.(type) {
	case True:
		if neg {
			return nFalse{}
		}
		return nTrue{}
	case Cmp:
		if neg {
			return nLit{Cmp{Op: v.Op.negate(), L: v.L, R: v.R}}
		}
		return nLit{v}
	case Not:
		return pushNot(v.X, !neg)
	case And:
		if neg { // De Morgan
			return nOr{pushNot(v.L, true), pushNot(v.R, true)}
		}
		return nAnd{pushNot(v.L, false), pushNot(v.R, false)}
	case Or:
		if neg {
			return nAnd{pushNot(v.L, true), pushNot(v.R, true)}
		}
		return nOr{pushNot(v.L, false), pushNot(v.R, false)}
	default:
		panic("query: unknown predicate node in CNF conversion")
	}
}

// distribute converts NNF to CNF by distributing Or over And.
func distribute(n nnf) CNF {
	switch v := n.(type) {
	case nTrue:
		return CNF{}
	case nFalse:
		return CNF{Clause{}} // the empty clause is unsatisfiable
	case nLit:
		return CNF{Clause{v.c}}
	case nAnd:
		return append(distribute(v.l), distribute(v.r)...)
	case nOr:
		left, right := distribute(v.l), distribute(v.r)
		// TRUE on either side absorbs the disjunction.
		if len(left) == 0 || len(right) == 0 {
			return CNF{}
		}
		out := make(CNF, 0, len(left)*len(right))
		for _, lc := range left {
			for _, rc := range right {
				merged := make(Clause, 0, len(lc)+len(rc))
				merged = append(merged, lc...)
				merged = append(merged, rc...)
				out = append(out, merged)
			}
		}
		return out
	default:
		panic("query: unknown NNF node")
	}
}
